package workload

import (
	"testing"

	"lowvcc/internal/isa"
	"lowvcc/internal/trace"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(SpecInt(), 5000, 42)
	b := Generate(SpecInt(), 5000, 42)
	if a.Name != b.Name || len(a.Insts) != len(b.Insts) {
		t.Fatal("shape differs between identical generations")
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatalf("inst %d differs: %+v vs %+v", i, a.Insts[i], b.Insts[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(SpecInt(), 1000, 1)
	b := Generate(SpecInt(), 1000, 2)
	same := 0
	for i := range a.Insts {
		if a.Insts[i] == b.Insts[i] {
			same++
		}
	}
	if same == len(a.Insts) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGeneratedInstructionsValid(t *testing.T) {
	for _, p := range Profiles() {
		tr := Generate(p, 20000, 7)
		for i, in := range tr.Insts {
			if err := in.Validate(); err != nil {
				t.Fatalf("%s inst %d invalid: %v (%+v)", p.Name, i, err, in)
			}
		}
	}
}

// TestMixApproximatesProfile: generated op frequencies track the profile
// weights (control ops are placed structurally so they drift more).
func TestMixApproximatesProfile(t *testing.T) {
	p := SpecInt()
	tr := Generate(p, 100000, 11)
	s := trace.Summarize(tr)
	loadFrac := float64(s.Loads) / float64(s.Count)
	if loadFrac < 0.15 || loadFrac > 0.30 {
		t.Errorf("load fraction %.3f far from profile weight %.3f", loadFrac, p.Load)
	}
	aluFrac := float64(s.PerOp[isa.OpALU]) / float64(s.Count)
	if aluFrac < 0.35 || aluFrac > 0.65 {
		t.Errorf("alu fraction %.3f far from profile weight %.3f", aluFrac, p.ALU)
	}
	ctrlFrac := float64(s.Ctrl) / float64(s.Count)
	if ctrlFrac < 0.05 || ctrlFrac > 0.30 {
		t.Errorf("control fraction %.3f implausible", ctrlFrac)
	}
}

// TestReturnsMatchCalls: returns never outnumber calls at any prefix (the
// generator only emits a return with a live call stack), so the RSB
// behaviour is well defined.
func TestReturnsMatchCalls(t *testing.T) {
	tr := Generate(Server(), 50000, 3)
	depth := 0
	for i, in := range tr.Insts {
		switch in.Op {
		case isa.OpCall:
			depth++
		case isa.OpReturn:
			depth--
			if depth < -64 { // generator bounds stack at 64
				t.Fatalf("inst %d: unmatched returns (depth %d)", i, depth)
			}
		}
	}
}

// TestReturnTargetsFollowCalls: returns overwhelmingly jump to the
// instruction after their call site (the address an RSB would predict);
// only out-of-range edge cases may deviate.
func TestReturnTargetsFollowCalls(t *testing.T) {
	tr := Generate(Server(), 50000, 5)
	type frame struct{ retPC uint64 }
	var stack []frame
	match, total := 0, 0
	for _, in := range tr.Insts {
		switch in.Op {
		case isa.OpCall:
			stack = append(stack, frame{in.PC + 4})
			if len(stack) > 64 {
				stack = stack[1:]
			}
		case isa.OpReturn:
			if len(stack) == 0 {
				continue
			}
			want := stack[len(stack)-1].retPC
			stack = stack[:len(stack)-1]
			total++
			if in.Addr == want {
				match++
			}
		}
	}
	if total == 0 {
		t.Fatal("no matched returns in server trace")
	}
	if frac := float64(match) / float64(total); frac < 0.99 {
		t.Errorf("only %.1f%% of returns target call+4; RSB would be useless", frac*100)
	}
}

// TestPCContinuity: PCs advance sequentially except across taken control
// transfers, whose targets the next instruction must honour.
func TestPCContinuity(t *testing.T) {
	tr := Generate(SpecInt(), 30000, 9)
	for i := 1; i < len(tr.Insts); i++ {
		prev, cur := tr.Insts[i-1], tr.Insts[i]
		if isa.IsCtrl(prev.Op) && (prev.Taken || prev.Op != isa.OpBranch) {
			if cur.PC != prev.Addr {
				t.Fatalf("inst %d: PC %#x after taken %v to %#x", i, cur.PC, prev.Op, prev.Addr)
			}
		} else if cur.PC != prev.PC+4 {
			t.Fatalf("inst %d: PC %#x does not follow %#x", i, cur.PC, prev.PC)
		}
	}
}

func TestMemoryAddressesInWorkingSet(t *testing.T) {
	p := SpecInt()
	tr := Generate(p, 30000, 13)
	for i, in := range tr.Insts {
		if !isa.IsMem(in.Op) {
			continue
		}
		if in.Addr < dataBase || in.Addr >= dataBase+p.DataWorkingSet {
			t.Fatalf("inst %d: address %#x outside working set", i, in.Addr)
		}
	}
}

// TestDependencyDistances: the mean distance between a consumer and its
// most recent producing instruction tracks DepDistMean, the knob that
// calibrates the 13.2%% IRAW-delay statistic.
func TestDependencyDistances(t *testing.T) {
	p := SpecInt()
	tr := Generate(p, 100000, 17)
	lastWriter := map[isa.Reg]int{}
	var sum, n float64
	for i, in := range tr.Insts {
		for _, src := range []isa.Reg{in.Src1, in.Src2} {
			if src == isa.RegNone {
				continue
			}
			if w, ok := lastWriter[src]; ok {
				d := float64(i - w)
				if d <= 16 { // only near dependencies are meaningful here
					sum += d
					n++
				}
			}
		}
		if in.Dst != isa.RegNone {
			lastWriter[in.Dst] = i
		}
	}
	mean := sum / n
	if mean < 1.2 || mean > 5.0 {
		t.Errorf("near-dependency mean distance %.2f implausible for DepDistMean %.1f", mean, p.DepDistMean)
	}
}

func TestSuiteShape(t *testing.T) {
	suite := Suite(1000, 2)
	if len(suite) != 14 {
		t.Fatalf("suite has %d traces, want 7 profiles x 2 seeds", len(suite))
	}
	names := map[string]bool{}
	for _, tr := range suite {
		if tr.Len() != 1000 {
			t.Fatalf("trace %s has %d insts", tr.Name, tr.Len())
		}
		if names[tr.Name] {
			t.Fatalf("duplicate trace name %s", tr.Name)
		}
		names[tr.Name] = true
	}
}

func TestSuiteMemoized(t *testing.T) {
	a := Suite(500, 1)
	b := Suite(500, 1)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("suite lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace %d regenerated instead of cached", i)
		}
	}
	if cap(a) != len(a) {
		t.Fatalf("cached suite has spare capacity (%d > %d): appends would alias the shared backing array", cap(a), len(a))
	}
	c := Suite(500, 2)
	if len(c) == len(a) && c[0] == a[0] {
		t.Fatal("distinct suite keys share cache entries")
	}
	d := Suite(600, 1)
	if d[0] == a[0] {
		t.Fatal("distinct instruction counts share cache entries")
	}
	if d[0].Len() != 600 {
		t.Fatalf("cached key collision: got %d insts", d[0].Len())
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	cases := []Profile{
		{Name: "empty"},
		func() Profile { p := SpecInt(); p.DepDistMean = 0.5; return p }(),
		func() Profile { p := SpecInt(); p.DataWorkingSet = 0; return p }(),
		func() Profile { p := SpecInt(); p.BlockLenMean = 0; return p }(),
	}
	for _, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %q accepted", p.Name)
		}
	}
}

func TestBranchBiasSites(t *testing.T) {
	// Multimedia has almost no flaky branches: its taken-rate per site
	// should be strongly polarized.
	tr := Generate(Multimedia(), 50000, 21)
	taken := map[uint64][2]int{}
	for _, in := range tr.Insts {
		if in.Op != isa.OpBranch {
			continue
		}
		c := taken[in.PC]
		if in.Taken {
			c[0]++
		}
		c[1]++
		taken[in.PC] = c
	}
	polarized, total := 0, 0
	for _, c := range taken {
		if c[1] < 20 {
			continue
		}
		total++
		rate := float64(c[0]) / float64(c[1])
		if rate < 0.15 || rate > 0.85 {
			polarized++
		}
	}
	if total == 0 {
		t.Fatal("no hot branch sites found")
	}
	if frac := float64(polarized) / float64(total); frac < 0.8 {
		t.Errorf("only %.0f%% of multimedia branch sites polarized, want >80%%", frac*100)
	}
}
