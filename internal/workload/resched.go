package workload

import (
	"sync"
	"sync/atomic"

	"lowvcc/internal/isa"
	"lowvcc/internal/trace"
)

// Reschedule implements the compiler-assistance extension the paper leaves
// as future work (Section 5.2: "the compiler could help removing some of
// the register file induced stalls by scheduling instructions properly").
//
// It list-schedules each basic block (the instructions between control
// transfers), greedily hoisting ready instructions so that a consumer never
// sits exactly one cycle behind its producer's bypass window — the IRAW
// bubble — when an independent instruction can fill the slot instead. The
// transformation preserves per-block instruction sets, program order across
// blocks, relative memory-operation order (no alias analysis), and every
// register dependence.
//
// minGap is the producer→consumer distance (in instructions) the scheduler
// tries to establish. On a W-wide core a consumer issues roughly d/W cycles
// behind its producer, so clearing an N-cycle bubble after L+bypass cycles
// needs d > W*(L+bypass+N): 8 works well for the modelled 2-wide core
// (smaller gaps can land consumers exactly on the bubble cycle).
//
// Results are memoized per (trace identity, minGap) — the same keyed-cache
// pattern as workload.Suite — because the scheduler is pure and the
// compiler-assistance experiments reschedule the same shared suite traces
// on every call. Cached traces are shared: callers must treat them (and
// the input) as read-only, as all consumers in the tree do.
func Reschedule(tr *trace.Trace, minGap int) *trace.Trace {
	if minGap < 1 {
		minGap = 1
	}
	key := reschedKey{tr, minGap}
	if v, ok := reschedCache.Load(key); ok {
		return v.(*trace.Trace)
	}
	out := reschedule(tr, minGap)
	if reschedCacheLen.Load() >= reschedCacheCap {
		// Past the bound, serve uncached rather than retain forever: the
		// cache targets the shared long-lived suite traces, not callers
		// feeding a stream of fresh ones.
		return out
	}
	// Two racing schedulers produce identical traces; keep whichever one
	// published first so all callers share one copy.
	v, loaded := reschedCache.LoadOrStore(key, out)
	if !loaded {
		reschedCacheLen.Add(1)
	}
	return v.(*trace.Trace)
}

// reschedCache memoizes Reschedule. Keys hold the input trace pointer:
// experiment traces are themselves shared and long-lived (Suite's cache),
// so pointer identity is exactly "same trace". reschedCacheCap bounds
// retention — entries pin both the input and output traces, so an
// unbounded map would leak if a caller ever rescheduled a stream of fresh
// traces.
var (
	reschedCache    sync.Map // reschedKey -> *trace.Trace
	reschedCacheLen atomic.Int64
)

const reschedCacheCap = 256

type reschedKey struct {
	tr     *trace.Trace
	minGap int
}

func reschedule(tr *trace.Trace, minGap int) *trace.Trace {
	out := &trace.Trace{Name: tr.Name + "-resched", Insts: make([]trace.Inst, 0, len(tr.Insts))}
	block := make([]trace.Inst, 0, 64)
	flush := func() {
		out.Insts = append(out.Insts, scheduleBlock(block, minGap)...)
		block = block[:0]
	}
	for _, in := range tr.Insts {
		block = append(block, in)
		// Control transfers end a schedulable region (they must stay last);
		// fences serialize and stay put too.
		if isa.IsCtrl(in.Op) || in.Op == isa.OpFence {
			flush()
		}
	}
	flush()
	return out
}

// scheduleBlock reorders one block's body (the terminator, if any, stays
// last) to widen producer→consumer distances.
func scheduleBlock(block []trace.Inst, minGap int) []trace.Inst {
	n := len(block)
	if n <= 2 {
		return append([]trace.Inst(nil), block...)
	}
	body := n
	last := block[n-1]
	hasTerm := isa.IsCtrl(last.Op) || last.Op == isa.OpFence
	if hasTerm {
		body = n - 1
	}

	type node struct {
		in        trace.Inst
		deps      []int // body indices this instruction must follow
		nsucc     int   // unscheduled dependents (for bookkeeping only)
		scheduled bool
	}
	nodes := make([]node, body)
	lastWriter := map[isa.Reg]int{}
	lastMem := -1
	for i := 0; i < body; i++ {
		in := block[i]
		nd := node{in: in}
		for _, src := range [2]isa.Reg{in.Src1, in.Src2} {
			if src == isa.RegNone {
				continue
			}
			if w, ok := lastWriter[src]; ok {
				nd.deps = append(nd.deps, w) // RAW
			}
		}
		if in.Dst != isa.RegNone {
			if w, ok := lastWriter[in.Dst]; ok {
				nd.deps = append(nd.deps, w) // WAW
			}
		}
		if isa.IsMem(in.Op) {
			if lastMem >= 0 {
				nd.deps = append(nd.deps, lastMem) // memory order
			}
			lastMem = i
		}
		nodes[i] = nd
		if in.Dst != isa.RegNone {
			lastWriter[in.Dst] = i
		}
	}
	for i := range nodes {
		for _, d := range nodes[i].deps {
			nodes[d].nsucc++
		}
	}

	// position[i] = slot the body instruction was scheduled into.
	position := make([]int, body)
	out := make([]trace.Inst, 0, n)
	for len(out) < body {
		slot := len(out)
		best := -1
		bestScore := -1 << 30
		for i := range nodes {
			if nodes[i].scheduled {
				continue
			}
			ready := true
			gapPenalty := 0
			for _, d := range nodes[i].deps {
				if !nodes[d].scheduled {
					ready = false
					break
				}
				if gap := slot - position[d]; gap < minGap {
					gapPenalty += minGap - gap
				}
			}
			if !ready {
				continue
			}
			// Prefer instructions whose dependences are already far away,
			// then earlier program order (stability).
			score := -gapPenalty*1000 - i
			if score > bestScore {
				bestScore = score
				best = i
			}
		}
		// A ready instruction always exists (the DAG is acyclic).
		nodes[best].scheduled = true
		position[best] = slot
		out = append(out, nodes[best].in)
	}
	if hasTerm {
		out = append(out, last)
	}
	return out
}
