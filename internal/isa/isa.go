// Package isa defines the instruction-set abstraction the trace-driven
// simulator operates on: operation classes with execution latencies, and the
// logical register file visible to the issue logic.
//
// The paper's core is an Intel Silverthorne (in-order x86); traces drive its
// pipeline at the micro-op level. We model the op classes that matter for
// IRAW behaviour — integer/FP ALU ops of several latencies, long-latency
// dividers (the scoreboard's long-latency path), loads/stores (DL0 and the
// Store Table), and control flow (BP and RSB).
package isa

import "fmt"

// Op is an operation class.
type Op uint8

// Operation classes. The zero value is OpNop so that zeroed trace records
// are harmless.
const (
	OpNop    Op = iota
	OpALU       // single-cycle integer op
	OpMul       // pipelined integer multiply
	OpDiv       // long-latency integer divide (separate-scoreboard path)
	OpFPAdd     // pipelined FP add
	OpFPMul     // pipelined FP multiply
	OpFPDiv     // long-latency FP divide
	OpLoad      // memory load (latency depends on the cache hierarchy)
	OpStore     // memory store (commits to DL0)
	OpBranch    // conditional branch (uses BP)
	OpCall      // call (pushes RSB)
	OpReturn    // return (pops RSB)
	OpFence     // serializing op: drains the pipeline (IQ NOOP injection)
	numOps
)

// NumOps is the number of operation classes.
const NumOps = int(numOps)

var opNames = [NumOps]string{
	"nop", "alu", "mul", "div", "fpadd", "fpmul", "fpdiv",
	"load", "store", "branch", "call", "return", "fence",
}

// String implements fmt.Stringer.
func (op Op) String() string {
	if int(op) < NumOps {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// Valid reports whether op is a defined operation class.
func (op Op) Valid() bool { return op < numOps }

// execLatency is the execution latency in cycles of each class (a DL0 hit
// for loads; misses extend it dynamically). Values follow the low-power
// in-order design point: short integer pipes, modest FP.
var execLatency = [NumOps]int{
	1,  // nop
	1,  // alu
	4,  // mul
	12, // div
	3,  // fpadd
	4,  // fpmul
	20, // fpdiv
	2,  // load (hit)
	1,  // store
	1,  // branch
	1,  // call
	1,  // return
	1,  // fence
}

// Latency returns the base execution latency of op in cycles.
func Latency(op Op) int {
	if !op.Valid() {
		panic(fmt.Sprintf("isa: invalid op %d", uint8(op)))
	}
	return execLatency[op]
}

// LongLatency reports whether op uses the long-latency readiness path: its
// completion is signalled by an event rather than fitting in the scoreboard
// shift register (Section 4.1.1: "FP division ... or a load miss").
func LongLatency(op Op) bool { return op == OpDiv || op == OpFPDiv }

// IsMem reports whether op accesses the data cache.
func IsMem(op Op) bool { return op == OpLoad || op == OpStore }

// IsCtrl reports whether op redirects control flow.
func IsCtrl(op Op) bool { return op == OpBranch || op == OpCall || op == OpReturn }

// WritesReg reports whether the class produces a register result.
func WritesReg(op Op) bool {
	switch op {
	case OpALU, OpMul, OpDiv, OpFPAdd, OpFPMul, OpFPDiv, OpLoad:
		return true
	}
	return false
}

// Reg is a logical register index. The issue logic tracks readiness per
// logical register in a scoreboard indexed by Reg.
type Reg uint8

// RegNone marks an absent operand.
const RegNone Reg = 0xFF

// NumRegs is the number of logical registers the scoreboard tracks (the
// architectural integer+FP set visible to an in-order x86 core's renamer-
// free issue logic).
const NumRegs = 16

// Valid reports whether r names a register (not RegNone) in range.
func (r Reg) Valid() bool { return r < NumRegs }

// String implements fmt.Stringer.
func (r Reg) String() string {
	if r == RegNone {
		return "r-"
	}
	return fmt.Sprintf("r%d", uint8(r))
}
