package isa

import "testing"

func TestOpProperties(t *testing.T) {
	for op := Op(0); op.Valid(); op++ {
		if Latency(op) < 1 {
			t.Errorf("%v latency %d", op, Latency(op))
		}
		if op.String() == "" {
			t.Errorf("op %d has empty name", op)
		}
	}
	if Op(200).Valid() {
		t.Fatal("invalid op reported valid")
	}
}

func TestLongLatencyOps(t *testing.T) {
	for _, op := range []Op{OpDiv, OpFPDiv} {
		if !LongLatency(op) {
			t.Errorf("%v not long-latency", op)
		}
	}
	for _, op := range []Op{OpALU, OpLoad, OpMul, OpFPMul} {
		if LongLatency(op) {
			t.Errorf("%v long-latency", op)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	if !IsMem(OpLoad) || !IsMem(OpStore) || IsMem(OpALU) {
		t.Fatal("IsMem wrong")
	}
	if !IsCtrl(OpBranch) || !IsCtrl(OpCall) || !IsCtrl(OpReturn) || IsCtrl(OpFence) {
		t.Fatal("IsCtrl wrong")
	}
	for _, op := range []Op{OpALU, OpMul, OpDiv, OpFPAdd, OpFPMul, OpFPDiv, OpLoad} {
		if !WritesReg(op) {
			t.Errorf("%v should write a register", op)
		}
	}
	for _, op := range []Op{OpStore, OpBranch, OpNop, OpFence, OpCall, OpReturn} {
		if WritesReg(op) {
			t.Errorf("%v should not write a register", op)
		}
	}
}

func TestLatencyPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Latency(Op(99))
}

func TestRegValidity(t *testing.T) {
	if !Reg(0).Valid() || !Reg(NumRegs-1).Valid() {
		t.Fatal("valid regs invalid")
	}
	if Reg(NumRegs).Valid() || RegNone.Valid() {
		t.Fatal("invalid regs valid")
	}
	if Reg(3).String() != "r3" || RegNone.String() != "r-" {
		t.Fatal("reg strings wrong")
	}
}
