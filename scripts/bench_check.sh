#!/usr/bin/env bash
# bench_check.sh — guard against simulator-throughput regressions.
#
# Runs the throughput benchmarks and compares their rates against the
# highest-numbered committed BENCH_<n>.json:
#
#   - BenchmarkCoreThroughput        insts/s           (warm profile)
#   - BenchmarkMemBoundThroughput    membound-insts/s  (mem-heavy fast path)
#
# Fails when a measured rate drops more than the allowed fraction below the
# recorded one (default 20%, override with BENCH_TOLERANCE, e.g.
# BENCH_TOLERANCE=0.3). A reference file without a metric (older BENCH
# files predate the mem-bound benchmark) skips that gate.
#
#   scripts/bench_check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

tolerance="${BENCH_TOLERANCE:-0.20}"

ref_file="$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)"
if [[ -z "$ref_file" ]]; then
    echo "bench_check: no committed BENCH_*.json to compare against" >&2
    exit 1
fi

# check <benchmark> <metric> <benchtime> <required>: best-of-three
# (single-iteration benchmark runs are noisy and this guard must only fire
# on real regressions), compared against the recorded reference. A missing
# reference metric fails when required (the gate must never silently turn
# itself off) and skips otherwise (reference files may predate the metric).
check() {
    local bench="$1" metric="$2" benchtime="$3" required="$4"
    local ref best cur
    ref="$(sed -n 's/.*"'"$bench"'".*"'"${metric//\//\\/}"'": \([0-9.e+]*\).*/\1/p' "$ref_file")"
    if [[ -z "$ref" ]]; then
        if [[ "$required" == required ]]; then
            echo "bench_check: $ref_file has no $bench $metric" >&2
            exit 1
        fi
        echo "bench_check: $ref_file has no $bench $metric — skipping that gate"
        return 0
    fi
    best=0
    for _ in 1 2 3; do
        cur="$(go test -run '^$' -bench "^${bench}\$" -benchtime "$benchtime" . |
            awk -v m="$metric" '/^Benchmark/ { for (i = 1; i < NF; i++) if ($(i+1) == m) print $i }')"
        if [[ -z "$cur" ]]; then
            echo "bench_check: $bench produced no $metric metric" >&2
            exit 1
        fi
        best="$(awk -v a="$best" -v b="$cur" 'BEGIN { print (b > a) ? b : a }')"
    done
    echo "bench_check: $bench $metric: reference $ref ($ref_file), measured $best (best of 3)"
    awk -v ref="$ref" -v cur="$best" -v tol="$tolerance" -v what="$bench" 'BEGIN {
        floor = ref * (1 - tol)
        if (cur < floor) {
            printf "bench_check: FAIL — %s: %.0f is below the %.0f floor (ref %.0f, tolerance %.0f%%)\n",
                what, cur, floor, ref, tol * 100
            exit 1
        }
        printf "bench_check: OK — %s within %.0f%% of reference\n", what, tol * 100
    }'
}

check BenchmarkCoreThroughput "insts/s" 5x required
check BenchmarkMemBoundThroughput "membound-insts/s" 2x optional
