#!/usr/bin/env bash
# bench_check.sh — guard against simulator-throughput regressions and
# sharding-bias drift.
#
# Throughput gates are *relative*: the benchmark binary is built twice in
# the same run — once from the working tree and once from the baseline
# commit (the commit that recorded the newest committed BENCH_<n>.json,
# resolved from the file's git history) in a temporary git worktree — and
# the two binaries run interleaved on the same machine:
#
#   - BenchmarkCoreThroughput        insts/s           (warm profile)
#   - BenchmarkMemBoundThroughput    membound-insts/s  (mem-heavy fast path)
#
# Same-run interleaving removes the cross-day machine-load skew that
# absolute comparisons against recorded numbers suffered from (BENCH_3
# recorded 4.90M insts/s; same-day HEAD rebuilds measured 3.5-4.4M on a
# loaded machine, a phantom 10-30% "regression"). When the baseline build
# is unavailable (no git history, shallow clone, the baseline fails to
# build), the gate falls back to the recorded absolute numbers with the
# same tolerance and says so.
#
# The sharding-bias gate is absolute: BenchmarkShardedLongTrace's
# shard-bias-% is deterministic simulation output (no wall-clock in it),
# so HEAD's value is compared against a fixed ceiling. Since the warm-state
# checkpoint store made full-history warm the sharded default the ceiling
# is 1% (the measured bias is ~0.003%; the old two-window default recorded
# -2.45%).
#
# Fails when a measured rate drops more than the allowed fraction below
# the baseline (default 20%, override with BENCH_TOLERANCE, e.g.
# BENCH_TOLERANCE=0.3), or when shard-bias-% exceeds BENCH_BIAS_MAX
# (default 1).
#
#   scripts/bench_check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

tolerance="${BENCH_TOLERANCE:-0.20}"
bias_max="${BENCH_BIAS_MAX:-1}"

# Environments that cannot run the gate at all degrade to a clearly-labeled
# skip (exit 0) rather than a cryptic failure: the gate's job is catching
# engine regressions on machines that can measure them, not blocking
# checkouts that cannot.
if ! command -v go >/dev/null 2>&1; then
    echo "bench_check: SKIP — no go toolchain on PATH; install Go to run the perf gate"
    exit 0
fi
if ! command -v git >/dev/null 2>&1 || ! git rev-parse --git-dir >/dev/null 2>&1; then
    echo "bench_check: note — not a git checkout; relative (rebuilt-baseline) comparison unavailable"
fi

ref_file="$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)"
if [[ -z "$ref_file" ]]; then
    echo "bench_check: SKIP — no BENCH_*.json recorded yet; run scripts/bench.sh to create the first baseline"
    exit 0
fi

# Resolve the baseline commit: the last commit that touched the newest
# *committed* BENCH file (that commit carries both the recorded numbers
# and the engine they measured; the file's meta entry records the parent
# the tree was based on when recording, for provenance). Walk backwards so
# an uncommitted BENCH_<n+1>.json in the working tree still gates against
# the previous recorded baseline.
base_commit=""
for f in $(ls BENCH_*.json | sort -t_ -k2 -rn); do
    base_commit="$(git log -n1 --format=%H -- "$f" 2>/dev/null || true)"
    if [[ -n "$base_commit" ]]; then
        ref_file="$f"
        break
    fi
done

workdir=""
cleanup() {
    [[ -n "$workdir" ]] || return 0
    git worktree remove --force "$workdir/base" >/dev/null 2>&1 || true
    rm -rf "$workdir"
}
trap cleanup EXIT

# Build the two benchmark binaries. A baseline build failure downgrades to
# the absolute fallback rather than failing the check.
head_bin=""
base_bin=""
workdir="$(mktemp -d)"
if go test -c -o "$workdir/head.test" . >/dev/null; then
    head_bin="$workdir/head.test"
else
    echo "bench_check: working tree does not build" >&2
    exit 1
fi
if [[ -n "$base_commit" ]] &&
    git worktree add --detach "$workdir/base" "$base_commit" >/dev/null 2>&1 &&
    (cd "$workdir/base" && go test -c -o "$workdir/base.test" . >/dev/null 2>&1); then
    base_bin="$workdir/base.test"
    echo "bench_check: baseline $ref_file @ ${base_commit:0:12} rebuilt for same-machine comparison"
else
    echo "bench_check: baseline rebuild unavailable — falling back to recorded absolute numbers"
fi

# run_metric <binary> <bench> <metric> <benchtime>: one run, print the
# metric value (empty when the benchmark or metric does not exist).
run_metric() {
    local bin="$1" bench="$2" metric="$3" benchtime="$4"
    "$bin" -test.run '^$' -test.bench "^${bench}\$" -test.benchtime "$benchtime" 2>/dev/null |
        awk -v m="$metric" '/^Benchmark/ { for (i = 1; i < NF; i++) if ($(i+1) == m) print $i }'
}

# check <benchmark> <metric> <benchtime> <required>: best-of-three
# (single-iteration benchmark runs are noisy and this guard must only fire
# on real regressions), interleaved head/baseline when the baseline binary
# exists, else against the recorded reference number. A missing reference
# metric fails when required (the gate must never silently turn itself
# off) and skips otherwise (baselines may predate the metric).
check() {
    local bench="$1" metric="$2" benchtime="$3" required="$4"
    local ref="" best=0 base_best=0 cur base_cur what=""
    if [[ -n "$base_bin" ]]; then
        # The existence probe doubles as the baseline's first sample, so
        # both sides end up best-of-three.
        base_cur="$(run_metric "$base_bin" "$bench" "$metric" "$benchtime")"
        if [[ -z "$base_cur" ]]; then
            if [[ "$required" == required ]]; then
                echo "bench_check: baseline build has no $bench $metric" >&2
                exit 1
            fi
            echo "bench_check: baseline build has no $bench $metric — skipping that gate"
            return 0
        fi
        base_best="$base_cur"
    else
        ref="$(sed -n 's/.*"'"$bench"'".*"'"${metric//\//\\/}"'": \([0-9.e+]*\).*/\1/p' "$ref_file")"
        if [[ -z "$ref" ]]; then
            if [[ "$required" == required ]]; then
                echo "bench_check: $ref_file has no $bench $metric" >&2
                exit 1
            fi
            echo "bench_check: $ref_file has no $bench $metric — skipping that gate"
            return 0
        fi
    fi
    for round in 1 2 3; do
        cur="$(run_metric "$head_bin" "$bench" "$metric" "$benchtime")"
        if [[ -z "$cur" ]]; then
            echo "bench_check: $bench produced no $metric metric" >&2
            exit 1
        fi
        best="$(awk -v a="$best" -v b="$cur" 'BEGIN { print (b > a) ? b : a }')"
        if [[ -n "$base_bin" && "$round" -lt 3 ]]; then
            # Interleave so load spikes hit both binaries alike; the probe
            # above was the baseline's third sample.
            base_cur="$(run_metric "$base_bin" "$bench" "$metric" "$benchtime")"
            base_best="$(awk -v a="$base_best" -v b="$base_cur" 'BEGIN { print (b > a) ? b : a }')"
        fi
    done
    if [[ -n "$base_bin" ]]; then
        ref="$base_best"
        what="$bench vs same-run baseline"
    else
        what="$bench vs recorded $ref_file"
    fi
    echo "bench_check: $bench $metric: baseline $ref, measured $best (best of 3)"
    awk -v ref="$ref" -v cur="$best" -v tol="$tolerance" -v what="$what" 'BEGIN {
        floor = ref * (1 - tol)
        if (cur < floor) {
            printf "bench_check: FAIL — %s: %.0f is below the %.0f floor (ref %.0f, tolerance %.0f%%)\n",
                what, cur, floor, ref, tol * 100
            exit 1
        }
        printf "bench_check: OK — %s within %.0f%% of baseline\n", what, tol * 100
    }'
}

# check_bias: the sharding-bias metric is deterministic, so one run and a
# fixed ceiling suffice — windowed sweeps must stay a faithful sample of
# the unsharded pass.
check_bias() {
    local bias
    bias="$(run_metric "$head_bin" BenchmarkShardedLongTrace "shard-bias-%" 1x)"
    if [[ -z "$bias" ]]; then
        echo "bench_check: BenchmarkShardedLongTrace produced no shard-bias-% metric" >&2
        exit 1
    fi
    awk -v bias="$bias" -v max="$bias_max" 'BEGIN {
        if (bias > max) {
            printf "bench_check: FAIL — functional-warm sharding bias %.2f%% exceeds the %.1f%% ceiling\n", bias, max
            exit 1
        }
        printf "bench_check: OK — functional-warm sharding bias %.2f%% (ceiling %.1f%%)\n", bias, max
    }'
}

# report_journal_overhead: informational, not a gate — journal-overhead-%
# compares two wall-clock arms of one iteration, so it is too noisy to fail
# a build on; it is recorded in BENCH_6.json (target: low single digits)
# and surfaced here so a runaway cost is visible in every check run.
report_journal_overhead() {
    local ovh
    ovh="$(run_metric "$head_bin" BenchmarkShardedLongTrace "journal-overhead-%" 1x)"
    if [[ -z "$ovh" ]]; then
        echo "bench_check: note — BenchmarkShardedLongTrace reports no journal-overhead-% (skipping the report)"
        return 0
    fi
    awk -v ovh="$ovh" 'BEGIN {
        printf "bench_check: journal overhead %.2f%% of sharded wall-clock (informational; expect low single digits)\n", ovh
    }'
}

# report_ckpt: informational — checkpoint-restore speedup over the live
# full-history replay reference and the store's hit rate across the timed
# loop (recorded in BENCH_8.json). Wall-clock-ratio noise makes these
# reports, not gates; the correctness side (bit-identity against the
# reference path) is asserted inside the benchmark itself and in
# internal/ckpt's tests.
report_ckpt() {
    local line speed rate
    line="$("$head_bin" -test.run '^$' -test.bench '^BenchmarkShardedLongTrace$' -test.benchtime 1x 2>/dev/null |
        awk '/^Benchmark/ { print }')"
    speed="$(awk '{ for (i = 1; i < NF; i++) if ($(i+1) == "ckpt-restore-speedup") print $i }' <<<"$line")"
    rate="$(awk '{ for (i = 1; i < NF; i++) if ($(i+1) == "ckpt-hit-rate-%") print $i }' <<<"$line")"
    if [[ -z "$speed" ]]; then
        echo "bench_check: note — BenchmarkShardedLongTrace reports no ckpt-restore-speedup (skipping the report)"
        return 0
    fi
    awk -v s="$speed" -v r="${rate:-0}" 'BEGIN {
        printf "bench_check: checkpoint restore %.2fx faster than live full-history replay, hit rate %.0f%% (informational)\n", s, r
    }'
}

# report_pushdown: informational — the extra wall-clock of the daemon's
# result push-down path (private worker journals + sealed-byte uploads
# over loopback HTTP) versus the shared-filesystem layout, recorded in
# BENCH_9.json. The benchmark's tiny cells make this a worst case (the
# per-cell wire cost is fixed; real sweeps amortize it), and wall-clock
# ratios of sub-second sweeps are too noisy to gate on.
report_pushdown() {
    local ovh
    ovh="$(run_metric "$head_bin" BenchmarkSweepDaemon "pushdown-overhead-%" 1x)"
    if [[ -z "$ovh" ]]; then
        echo "bench_check: note — BenchmarkSweepDaemon reports no pushdown-overhead-% (skipping the report)"
        return 0
    fi
    awk -v ovh="$ovh" 'BEGIN {
        printf "bench_check: result push-down overhead %.2f%% of shared-FS sweep wall-clock (informational; worst case at benchmark cell size)\n", ovh
    }'
}

# report_widecore: informational — simulator speed and simulated IPC at
# width 4, the widest point of the fetch/issue axis (recorded in
# BENCH_10.json). Width 2 is the modelled default and is what the required
# insts/s gate above measures; the width-4 rate is not gated because a
# wider core does more architectural work per simulated instruction, so a
# drop there may be a model change rather than an engine regression. The
# IPC is deterministic and printed alongside so a wide core that stops
# issuing wide is visible in every check run.
report_widecore() {
    local line rate ipc
    line="$("$head_bin" -test.run '^$' -test.bench '^BenchmarkWideCore$' -test.benchtime 1x 2>/dev/null |
        awk '/^Benchmark/ { print }')"
    rate="$(awk '{ for (i = 1; i < NF; i++) if ($(i+1) == "width4-insts/s") print $i }' <<<"$line")"
    ipc="$(awk '{ for (i = 1; i < NF; i++) if ($(i+1) == "width4-ipc") print $i }' <<<"$line")"
    if [[ -z "$rate" ]]; then
        echo "bench_check: note — BenchmarkWideCore reports no width4-insts/s (skipping the report)"
        return 0
    fi
    awk -v r="$rate" -v p="${ipc:-0}" 'BEGIN {
        printf "bench_check: width-4 core simulates %.0f insts/s at IPC %.3f (informational; width-2 default is the gated rate)\n", r, p
    }'
}

check BenchmarkCoreThroughput "insts/s" 5x required
check BenchmarkMemBoundThroughput "membound-insts/s" 2x optional
check BenchmarkShardedLongTrace "sharded-insts/s" 1x optional
check_bias
report_journal_overhead
report_ckpt
report_pushdown
report_widecore
