#!/usr/bin/env bash
# bench_check.sh — guard against core-throughput regressions.
#
# Runs BenchmarkCoreThroughput and compares insts/s against the highest-
# numbered committed BENCH_<n>.json. Fails when the measured rate drops
# more than the allowed fraction below the recorded one (default 20%,
# override with BENCH_TOLERANCE, e.g. BENCH_TOLERANCE=0.3).
#
#   scripts/bench_check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

tolerance="${BENCH_TOLERANCE:-0.20}"

ref_file="$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)"
if [[ -z "$ref_file" ]]; then
    echo "bench_check: no committed BENCH_*.json to compare against" >&2
    exit 1
fi

ref="$(sed -n 's/.*"BenchmarkCoreThroughput".*"insts\/s": \([0-9.e+]*\).*/\1/p' "$ref_file")"
if [[ -z "$ref" ]]; then
    echo "bench_check: $ref_file has no BenchmarkCoreThroughput insts/s" >&2
    exit 1
fi

# Best of three: single-iteration benchmark runs are noisy and this guard
# must only fire on real regressions.
best=0
for _ in 1 2 3; do
    cur="$(go test -run '^$' -bench '^BenchmarkCoreThroughput$' -benchtime 5x . |
        awk '/^BenchmarkCoreThroughput/ { for (i = 1; i < NF; i++) if ($(i+1) == "insts/s") print $i }')"
    if [[ -z "$cur" ]]; then
        echo "bench_check: benchmark produced no insts/s metric" >&2
        exit 1
    fi
    best="$(awk -v a="$best" -v b="$cur" 'BEGIN { print (b > a) ? b : a }')"
done

echo "bench_check: reference $ref insts/s ($ref_file), measured $best insts/s (best of 3)"
awk -v ref="$ref" -v cur="$best" -v tol="$tolerance" 'BEGIN {
    floor = ref * (1 - tol)
    if (cur < floor) {
        printf "bench_check: FAIL — %.0f insts/s is below the %.0f floor (ref %.0f, tolerance %.0f%%)\n",
            cur, floor, ref, tol * 100
        exit 1
    }
    printf "bench_check: OK — within %.0f%% of reference\n", tol * 100
}'
