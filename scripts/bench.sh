#!/usr/bin/env bash
# bench.sh — run the benchmark suite and record the perf trajectory.
#
# Emits BENCH_<n>.json in the repo root (n from $BENCH_INDEX, default 1):
# one object per benchmark with ns/op and every custom metric the
# benchmark reports (insts/s, perf gains, EDP, ...).
#
#   scripts/bench.sh                  # full suite, default time
#   BENCH_PATTERN=CoreThroughput BENCH_TIME=3s scripts/bench.sh
set -euo pipefail

cd "$(dirname "$0")/.."

pattern="${BENCH_PATTERN:-.}"
benchtime="${BENCH_TIME:-1x}"
index="${BENCH_INDEX:-1}"
out="BENCH_${index}.json"

raw="$(go test -run '^$' -bench "$pattern" -benchtime "$benchtime" . | tee /dev/stderr)"

# Provenance: the commit the recording tree was based on (HEAD; the
# working tree may carry the not-yet-committed changes being measured).
# bench_check.sh resolves its rebuild baseline from the file's own git
# history, not from this entry.
commit="$(git rev-parse HEAD 2>/dev/null || echo unknown)"

awk -v host="$(uname -sm)" -v commit="$commit" '
BEGIN { print "[\n  {\"name\": \"meta\", \"commit\": \"" commit "\"}"; sep = "," }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    line = sep "  {\"name\": \"" name "\", \"iterations\": " $2
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/"/, "", unit)
        line = line ", \"" unit "\": " $i
    }
    print line "}"
    sep = ","
}
END { print "]" }
' <<<"$raw" | sed 's/^,/  ,/' >"$out"

echo "wrote $out" >&2
