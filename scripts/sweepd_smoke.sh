#!/usr/bin/env bash
# sweepd_smoke.sh — end-to-end smoke test of the sweep daemon.
#
# Stands up a real sweepd process with external worker processes that
# share NO filesystem with the daemon (each journals into its own private
# directory and uploads sealed result bytes in Complete), submits sweeps
# through `vccsweep -server`, and asserts that:
#
#   1. kill -9'ing a worker mid-sweep loses nothing: the rendered CSV is
#      byte-identical to the same sweep run locally (lease reclamation
#      lost nothing, double-counted nothing, and every result crossed the
#      wire through the daemon's content check);
#   2. a second, windowed sweep (-window, warm-state checkpoints on: each
#      worker keeps a private ckpt store beside its private journal) is
#      also byte-identical to its local run;
#   3. a mid-sweep network partition (SIGSTOP a worker past the lease TTL,
#      then SIGCONT) plus another kill -9 still converges byte-identical —
#      the frozen worker abandons its reclaimed cell on thaw and rejoins;
#   4. a -width 3 sweep is byte-identical daemon vs local: the spec's
#      width reaches both the daemon's cell keys and the workers'
#      regenerated configs, so a width-threading bug on either side would
#      fail the content check or change the rendered numbers;
#   5. SIGTERM drains the daemon gracefully: it verifies the journal and
#      exits 0.
#
# Usage: scripts/sweepd_smoke.sh [insts] [seeds]
set -euo pipefail
cd "$(dirname "$0")/.."

INSTS="${1:-20000}"
SEEDS="${2:-1}"
MODES="baseline,iraw"

WORK="$(mktemp -d)"
DAEMON_PID=""
WORKER_PIDS=()
cleanup() {
  for p in "${WORKER_PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "sweepd_smoke: building" >&2
go build -o "$WORK/sweepd" ./cmd/sweepd
go build -o "$WORK/vccsweep" ./cmd/vccsweep

echo "sweepd_smoke: local baseline sweep" >&2
"$WORK/vccsweep" -insts "$INSTS" -seeds "$SEEDS" -modes "$MODES" -csv \
  > "$WORK/local.csv"

echo "sweepd_smoke: starting daemon (external workers only)" >&2
# -addr :0 picks a free port; parse it from the serving line. Short lease
# TTL so the murdered worker's cell requeues quickly.
"$WORK/sweepd" -addr 127.0.0.1:0 -journal "$WORK/jnl" -workers -1 \
  -lease-ttl 2s > "$WORK/daemon.out" 2> "$WORK/daemon.err" &
DAEMON_PID=$!

ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's/^sweepd: serving on //p' "$WORK/daemon.out" | head -n1)"
  [ -n "$ADDR" ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || {
    echo "sweepd_smoke: FAIL daemon died at startup" >&2
    cat "$WORK/daemon.err" >&2
    exit 1
  }
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "sweepd_smoke: FAIL no serving line" >&2; exit 1; }
echo "sweepd_smoke: daemon on $ADDR (pid $DAEMON_PID)" >&2

# Each worker gets an explicitly private journal directory — disjoint
# from the daemon's and from each other's, as if on different machines.
spawn_worker() { # spawn_worker <index>
  local i="$1"
  mkdir -p "$WORK/w$i-jnl"
  "$WORK/sweepd" -worker -join "$ADDR" -name "smoke-$i" -poll 20ms \
    -worker-journal "$WORK/w$i-jnl" \
    2> "$WORK/worker$i.err" &
  WORKER_PIDS+=($!)
  disown $! # keep bash's job reaper from announcing the kill -9
}
spawn_worker 1
spawn_worker 2

echo "sweepd_smoke: submitting sweep through vccsweep -server" >&2
"$WORK/vccsweep" -server "$ADDR" -insts "$INSTS" -seeds "$SEEDS" \
  -modes "$MODES" -csv > "$WORK/daemon.csv" 2> "$WORK/client.err" &
CLIENT_PID=$!

# Give the sweep a moment to get cells in flight, then murder one worker.
sleep 1
echo "sweepd_smoke: kill -9 worker ${WORKER_PIDS[0]}" >&2
kill -9 "${WORKER_PIDS[0]}"

if ! wait "$CLIENT_PID"; then
  echo "sweepd_smoke: FAIL client sweep errored" >&2
  cat "$WORK/client.err" >&2
  exit 1
fi

if ! diff -u "$WORK/local.csv" "$WORK/daemon.csv"; then
  echo "sweepd_smoke: FAIL daemon sweep differs from local sweep" >&2
  exit 1
fi
echo "sweepd_smoke: daemon CSV identical to local CSV" >&2

# Sanity: push-down really happened — the dead and live workers' private
# journals hold cells, and they are not the daemon's directory.
for i in 1 2; do
  if ! ls "$WORK/w$i-jnl"/*.cell >/dev/null 2>&1; then
    echo "sweepd_smoke: FAIL worker $i journaled nothing privately (push-down not exercised)" >&2
    exit 1
  fi
done

# Windowed sweep: sample windows shard each trace, functional warm-up runs
# through the warm-state checkpoint store (local: in-process shared store;
# daemon workers: each keeps a private ckpt/ beside its private journal).
# Both paths must stitch the same rows.
WINDOW=5000
echo "sweepd_smoke: local windowed sweep (-window $WINDOW)" >&2
"$WORK/vccsweep" -insts "$INSTS" -seeds "$SEEDS" -modes "$MODES" \
  -window "$WINDOW" -csv > "$WORK/local_win.csv"
echo "sweepd_smoke: windowed sweep through vccsweep -server" >&2
if ! "$WORK/vccsweep" -server "$ADDR" -insts "$INSTS" -seeds "$SEEDS" \
  -modes "$MODES" -window "$WINDOW" -csv > "$WORK/daemon_win.csv" \
  2> "$WORK/client_win.err"; then
  echo "sweepd_smoke: FAIL windowed client sweep errored" >&2
  cat "$WORK/client_win.err" >&2
  exit 1
fi
if ! diff -u "$WORK/local_win.csv" "$WORK/daemon_win.csv"; then
  echo "sweepd_smoke: FAIL windowed daemon sweep differs from local sweep" >&2
  exit 1
fi
echo "sweepd_smoke: windowed daemon CSV identical to local CSV" >&2

# Partition scenario: fresh cells (a different window size keys a new
# grid), two fresh workers. One is SIGSTOPped past the lease TTL — a
# network partition as the daemon sees it: heartbeats stop, the lease is
# reclaimed, the cell requeues. The other is kill -9'ed outright. The
# frozen worker thaws, abandons its reclaimed cell and rejoins; the sweep
# must still converge byte-identical to local.
WINDOW2=4000
echo "sweepd_smoke: local sweep for the partition scenario (-window $WINDOW2)" >&2
"$WORK/vccsweep" -insts "$INSTS" -seeds "$SEEDS" -modes "$MODES" \
  -window "$WINDOW2" -csv > "$WORK/local_part.csv"

# Retire the scenario-1 survivor so the partition scenario's fate rests
# entirely on the frozen worker rejoining: once its partner is murdered,
# nobody else can finish the sweep.
kill -9 "${WORKER_PIDS[1]}" 2>/dev/null || true

spawn_worker 3
spawn_worker 4
FROZEN_PID="${WORKER_PIDS[2]}"
DOOMED_PID="${WORKER_PIDS[3]}"

echo "sweepd_smoke: partition sweep through vccsweep -server" >&2
"$WORK/vccsweep" -server "$ADDR" -insts "$INSTS" -seeds "$SEEDS" \
  -modes "$MODES" -window "$WINDOW2" -csv > "$WORK/daemon_part.csv" \
  2> "$WORK/client_part.err" &
CLIENT_PID=$!

sleep 1
echo "sweepd_smoke: SIGSTOP worker $FROZEN_PID (partition), kill -9 worker $DOOMED_PID" >&2
kill -STOP "$FROZEN_PID"
kill -9 "$DOOMED_PID"
sleep 3 # > lease TTL: the frozen worker's lease is reclaimed meanwhile
echo "sweepd_smoke: SIGCONT worker $FROZEN_PID (partition heals)" >&2
kill -CONT "$FROZEN_PID"

if ! wait "$CLIENT_PID"; then
  echo "sweepd_smoke: FAIL partition client sweep errored" >&2
  cat "$WORK/client_part.err" >&2
  exit 1
fi
if ! diff -u "$WORK/local_part.csv" "$WORK/daemon_part.csv"; then
  echo "sweepd_smoke: FAIL partition sweep differs from local sweep" >&2
  exit 1
fi
echo "sweepd_smoke: partition-survivor CSV identical to local CSV" >&2

# Width scenario: a -width 3 sweep keys an entirely new cell grid (the
# width is part of the full core config, hence of every journal content
# address). The surviving worker regenerates each cell's width-3 config
# from the spec; daemon and local must render the same CSV.
echo "sweepd_smoke: local width-3 sweep" >&2
"$WORK/vccsweep" -insts "$INSTS" -seeds "$SEEDS" -modes "$MODES" \
  -width 3 -csv > "$WORK/local_w3.csv"
echo "sweepd_smoke: width-3 sweep through vccsweep -server" >&2
if ! "$WORK/vccsweep" -server "$ADDR" -insts "$INSTS" -seeds "$SEEDS" \
  -modes "$MODES" -width 3 -csv > "$WORK/daemon_w3.csv" \
  2> "$WORK/client_w3.err"; then
  echo "sweepd_smoke: FAIL width-3 client sweep errored" >&2
  cat "$WORK/client_w3.err" >&2
  exit 1
fi
if ! diff -u "$WORK/local_w3.csv" "$WORK/daemon_w3.csv"; then
  echo "sweepd_smoke: FAIL width-3 daemon sweep differs from local sweep" >&2
  exit 1
fi
echo "sweepd_smoke: width-3 daemon CSV identical to local CSV" >&2

echo "sweepd_smoke: SIGTERM daemon, expecting graceful drain + exit 0" >&2
kill -TERM "$DAEMON_PID"
DAEMON_RC=0
wait "$DAEMON_PID" || DAEMON_RC=$?
if [ "$DAEMON_RC" -ne 0 ]; then
  echo "sweepd_smoke: FAIL daemon exited $DAEMON_RC on SIGTERM" >&2
  cat "$WORK/daemon.err" >&2
  exit 1
fi
grep -q "journal verified" "$WORK/daemon.err" || {
  echo "sweepd_smoke: FAIL daemon drained without verifying the journal" >&2
  cat "$WORK/daemon.err" >&2
  exit 1
}
DAEMON_PID=""

echo "sweepd_smoke: PASS (no shared FS; kill -9 + partition mid-sweep; width-3 grid; results identical; clean drain)"
